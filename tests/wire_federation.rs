//! Wire-transport scenario corpus: putting the binary RPC protocol —
//! codec, frames, batching, pipelining, sockets — between the
//! federation coordinator and its shards must be an *observationally
//! invisible* deployment choice.
//!
//! - the federated trace is bit-identical across transports {in-proc,
//!   duplex channel, TCP loopback} × worker counts {1, 4, 8} × shard
//!   counts {1, 2, 4} under chaos;
//! - batching and pipelining knobs (`wire_batch`, `wire_window`) are
//!   pure performance levers: any setting produces the same trace;
//! - the wire path composes with pipelined appraisal;
//! - a shard *added* to a live federation takes over exactly the agents
//!   consistent hashing assigns it, nobody else moves, and the
//!   before/after traces agree wherever placement is irrelevant.

use continuous_attestation::crypto::Sha256;
use continuous_attestation::keylime::Agent;
use continuous_attestation::prelude::*;

type ChaosCluster = Cluster<ChaosTransport<ReliableTransport>>;

const NODES: u64 = 12;
const ROUNDS: u64 = 8;

fn corpus_config(workers: usize, pipeline_depth: usize, wire_batch: usize) -> VerifierConfig {
    VerifierConfig::builder()
        .continue_on_failure(true)
        .quarantine_enabled(true)
        .degraded_after(1)
        .quarantine_after(2)
        .reprobe_backoff_rounds(1)
        .reprobe_backoff_max_rounds(4)
        .max_retries(2)
        .worker_count(workers)
        .pipeline_depth(pipeline_depth)
        .wire_batch(wire_batch)
        .build()
        .unwrap()
}

fn sha256_hex(content: &[u8]) -> String {
    let mut h = Sha256::new();
    h.update(content);
    h.finalize().to_hex()
}

/// The same chaos plan as the sharding corpus: a partition window plus
/// background loss, so retries, quarantines and recoveries all cross
/// the wire.
fn corpus_plan() -> FaultPlan {
    FaultPlan::new(0xFED)
        .partition(2..5, FaultTarget::lanes([1, 7]))
        .loss(0..ROUNDS, FaultTarget::AllAgents, 0.2)
}

fn fleet_cluster(config: VerifierConfig) -> (ChaosCluster, Vec<AgentId>) {
    let tool = VfsPath::new("/usr/bin/service").unwrap();
    let content: &[u8] = b"federated service v1";
    let mut policy = RuntimePolicy::new();
    policy.allow(tool.as_str(), sha256_hex(content));
    policy.exclude("/tmp");

    let mut cluster = Cluster::with_transport(
        0xFED,
        config,
        ChaosTransport::new(ReliableTransport::new(), corpus_plan()),
    );
    cluster.publish_policy(policy);
    let mut ids = Vec::new();
    for i in 0..NODES {
        let machine_config = MachineConfig {
            hostname: format!("node-{i:02}"),
            seed: 800 + i,
            ..MachineConfig::default()
        };
        let mut machine = Machine::new(&cluster.manufacturer, machine_config);
        machine.write_executable(&tool, content).unwrap();
        machine.exec(&tool, ExecMethod::Direct).unwrap();
        ids.push(cluster.add_agent_shared(Agent::new(machine)).unwrap());
    }
    ids.sort();
    (cluster, ids)
}

/// Runs the chaos corpus federated over the given transport and knobs,
/// returning the full per-round reports (fleet *and* per-shard).
fn run_wired(
    workers: usize,
    pipeline_depth: usize,
    shards: u32,
    transport_kind: ShardTransportKind,
    wire_batch: usize,
    wire_window: usize,
) -> Vec<FederatedRoundReport> {
    let config = corpus_config(workers, pipeline_depth, wire_batch);
    let (mut cluster, ids) = fleet_cluster(config);
    let mut fed = Federation::from_verifier(
        &cluster.verifier,
        FederationConfig::new(shards, config)
            .with_transport(transport_kind)
            .with_wire_window(wire_window),
    );

    let mut trace = Vec::new();
    for round in 0..ROUNDS {
        cluster.transport.set_round(round);
        let (agents, transport) = cluster.federation_parts();
        let report = fed.run_round(agents, transport);
        assert_eq!(
            report.fleet.results.len(),
            ids.len(),
            "round {round}: the wire lost agents"
        );
        trace.push(report);
    }
    let fleet = fed.fleet_metrics();
    assert!(fleet.is_conserved(), "fleet metrics identity: {fleet:?}");
    trace
}

/// Tentpole acceptance: Duplex and TCP federated rounds return
/// bit-identical [`FederatedRoundReport`]s to the in-proc path, across
/// worker counts {1, 4, 8} × shard counts {1, 2, 4}.
#[test]
fn wire_transports_are_invisible_across_the_matrix() {
    let baseline = run_wired(1, 0, 1, ShardTransportKind::InProc, 0, 2);
    for workers in [1usize, 4, 8] {
        for shards in [1u32, 2, 4] {
            let inproc = run_wired(workers, 0, shards, ShardTransportKind::InProc, 0, 2);
            assert_eq!(
                fleet_of(&inproc),
                fleet_of(&baseline),
                "in-proc drifted at workers={workers} shards={shards}"
            );
            for kind in [ShardTransportKind::Duplex, ShardTransportKind::Tcp] {
                let wired = run_wired(workers, 0, shards, kind, 0, 2);
                assert_eq!(
                    wired, inproc,
                    "{kind:?} diverged at workers={workers} shards={shards}"
                );
            }
        }
    }
}

fn fleet_of(trace: &[FederatedRoundReport]) -> Vec<&RoundReport> {
    trace.iter().map(|r| &r.fleet).collect()
}

/// `wire_batch` and `wire_window` are pure performance levers: frame
/// shapes change, observable behaviour does not. Batch 1 (one row per
/// frame), a tiny window, and a batch larger than the whole shard all
/// reproduce the default trace.
#[test]
fn batching_and_windowing_do_not_change_the_trace() {
    let baseline = run_wired(4, 0, 2, ShardTransportKind::Duplex, 0, 2);
    for (batch, window) in [(1, 1), (3, 1), (3, 8), (1024, 2)] {
        let trace = run_wired(4, 0, 2, ShardTransportKind::Duplex, batch, window);
        assert_eq!(trace, baseline, "batch={batch} window={window} diverged");
    }
    // And over real sockets.
    let tcp = run_wired(4, 0, 2, ShardTransportKind::Tcp, 3, 2);
    assert_eq!(tcp, baseline);
}

/// The wire path composes with pipelined appraisal: each shard's
/// fetch→appraise pipeline runs behind the socket and the trace still
/// equals the classic inline in-proc run.
#[test]
fn wire_composes_with_pipelined_appraisal() {
    let inline_inproc = run_wired(4, 0, 2, ShardTransportKind::InProc, 0, 2);
    for kind in [ShardTransportKind::Duplex, ShardTransportKind::Tcp] {
        let piped = run_wired(4, 8, 2, kind, 3, 2);
        assert_eq!(piped, inline_inproc, "{kind:?} pipeline diverged");
    }
}

/// Satellite: a shard added to a live federation receives exactly the
/// agents whose ring placement now maps to it — everyone else stays
/// put — and the fleet stays whole.
#[test]
fn add_shard_moves_only_the_agents_the_ring_assigns_it() {
    let config = corpus_config(2, 0, 0);
    let (cluster, ids) = fleet_cluster(config);
    let mut fed = Federation::from_verifier(&cluster.verifier, FederationConfig::new(2, config));
    let before: Vec<(AgentId, u32)> = ids
        .iter()
        .map(|id| (id.clone(), fed.placement(id).unwrap()))
        .collect();

    let joined = 7u32;
    let migrated = fed.add_shard(joined);
    assert!(!migrated.is_empty(), "a joining shard takes over agents");
    assert!(fed.shard_ids().contains(&joined));
    assert_eq!(fed.shard_count(), 3);
    assert_eq!(fed.agent_count(), ids.len(), "no record lost joining");

    for (id, was) in &before {
        let now = fed.placement(id).expect("still placed");
        if migrated.contains(id) {
            assert_eq!(now, joined, "{id} migrated to the joining shard");
        } else {
            assert_eq!(now, *was, "{id} moved without being assigned");
        }
    }

    // Adding an already-live shard is a no-op.
    assert!(fed.add_shard(joined).is_empty());
    assert_eq!(fed.shard_count(), 3);
}

/// Satellite: rounds keep working — and metrics stay conserved — after
/// a shard joins mid-run, on the in-proc path and over the wire.
#[test]
fn rounds_stay_conserved_after_a_shard_joins_mid_run() {
    for kind in [
        ShardTransportKind::InProc,
        ShardTransportKind::Duplex,
        ShardTransportKind::Tcp,
    ] {
        let config = corpus_config(4, 0, 3);
        let (mut cluster, ids) = fleet_cluster(config);
        let mut fed = Federation::from_verifier(
            &cluster.verifier,
            FederationConfig::new(2, config).with_transport(kind),
        );

        for round in 0..ROUNDS {
            if round == 3 {
                let migrated = fed.add_shard(9);
                assert!(!migrated.is_empty(), "{kind:?}: the join was a no-op");
            }
            cluster.transport.set_round(round);
            let (agents, transport) = cluster.federation_parts();
            let report = fed.run_round(agents, transport);
            assert_eq!(
                report.fleet.results.len(),
                ids.len(),
                "{kind:?} round {round}: fleet report lost agents"
            );
            assert_eq!(report.fleet.health.total(), ids.len());
            if round >= 3 {
                assert!(
                    report.per_shard.iter().any(|(sid, _)| *sid == 9),
                    "{kind:?}: the joined shard reports rounds"
                );
            }
        }
        let fleet = fed.fleet_metrics();
        assert!(fleet.is_conserved(), "{kind:?}: {fleet:?}");
        assert!(fleet.backends_consistent());
    }
}
