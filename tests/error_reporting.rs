//! Error types across the workspace render useful, lowercase,
//! punctuation-free messages (C-GOOD-ERR) and implement `Error`.

use std::error::Error;

use continuous_attestation::ima::ImaError;
use continuous_attestation::keylime::{KeylimeError, TransportError};
use continuous_attestation::os::MachineError;
use continuous_attestation::tpm::TpmError;
use continuous_attestation::vfs::VfsError;

fn check(err: &dyn Error) {
    let msg = err.to_string();
    assert!(!msg.is_empty());
    assert!(!msg.ends_with('.'), "no trailing punctuation: {msg}");
    assert!(
        msg.chars().next().unwrap().is_lowercase(),
        "lowercase start: {msg}"
    );
}

#[test]
fn vfs_errors_render() {
    for err in [
        VfsError::InvalidPath { path: "x".into() },
        VfsError::NotFound { path: "/a".into() },
        VfsError::AlreadyExists { path: "/a".into() },
        VfsError::NotADirectory { path: "/a".into() },
        VfsError::IsADirectory { path: "/a".into() },
        VfsError::DirectoryNotEmpty { path: "/a".into() },
        VfsError::CrossDevice {
            from: "/a".into(),
            to: "/b".into(),
        },
        VfsError::MountError {
            reason: "busy".into(),
        },
    ] {
        check(&err);
    }
}

#[test]
fn tpm_errors_render() {
    for err in [
        TpmError::InvalidPcrIndex { index: 99 },
        TpmError::AlgorithmMismatch {
            bank: "sha256",
            digest: "sha1",
        },
        TpmError::NoAttestationKey,
        TpmError::EmptySelection,
    ] {
        check(&err);
    }
}

#[test]
fn ima_errors_render_and_chain() {
    let vfs_err = VfsError::NotFound { path: "/x".into() };
    let wrapped = ImaError::from(vfs_err);
    check(&wrapped);
    assert!(wrapped.source().is_some(), "wrapped errors expose source()");
    check(&ImaError::PolicyParse {
        line: 3,
        reason: "bad token".into(),
    });
    check(&ImaError::LogParse {
        line: 9,
        reason: "bad digest".into(),
    });
}

#[test]
fn machine_errors_render() {
    check(&MachineError::NotExecutable { path: "/x".into() });
    check(&MachineError::from(VfsError::NotFound {
        path: "/x".into(),
    }));
}

#[test]
fn keylime_errors_render() {
    for err in [
        KeylimeError::Transport(TransportError::RequestDropped),
        KeylimeError::Agent {
            reason: "no ak".into(),
        },
        KeylimeError::Registration {
            reason: "bad cert".into(),
        },
        KeylimeError::UnknownAgent { id: "ghost".into() },
        KeylimeError::PolicyFormat {
            reason: "truncated".into(),
        },
    ] {
        check(&err);
    }
    for err in [
        TransportError::RequestDropped,
        TransportError::ResponseDropped,
        TransportError::Codec {
            reason: "eof".into(),
        },
    ] {
        check(&err);
    }
}
