//! Every experiment is a pure function of its seed: identical
//! configurations produce identical reports, and different seeds differ.

use continuous_attestation::prelude::*;

#[test]
fn longrun_is_deterministic() {
    let a = run_longrun(LongRunConfig::small(11));
    let b = run_longrun(LongRunConfig::small(11));
    assert_eq!(a.updates.len(), b.updates.len());
    for (x, y) in a.updates.iter().zip(b.updates.iter()) {
        assert_eq!(x.day, y.day);
        assert_eq!(x.packages, y.packages);
        assert_eq!(x.lines_added, y.lines_added);
        assert_eq!(x.minutes, y.minutes);
    }
    assert_eq!(a.attestations, b.attestations);
    assert_eq!(a.verified, b.verified);
    assert_eq!(a.alerts, b.alerts);
}

#[test]
fn longrun_seeds_differ() {
    let a = run_longrun(LongRunConfig::small(11));
    let b = run_longrun(LongRunConfig::small(12));
    let lines_a: Vec<usize> = a.updates.iter().map(|u| u.lines_added).collect();
    let lines_b: Vec<usize> = b.updates.iter().map(|u| u.lines_added).collect();
    assert_ne!(lines_a, lines_b);
}

#[test]
fn fp_week_is_deterministic() {
    let a = run_fp_week(FpWeekConfig::small(13));
    let b = run_fp_week(FpWeekConfig::small(13));
    assert_eq!(a.total_false_positives(), b.total_false_positives());
    assert_eq!(a.hash_mismatches(), b.hash_mismatches());
    assert_eq!(a.snap_truncation_errors(), b.snap_truncation_errors());
    for (x, y) in a.days.iter().zip(b.days.iter()) {
        assert_eq!(x.alerts, y.alerts);
    }
}

#[test]
fn attack_evaluation_is_deterministic() {
    let corpus = attack_corpus();
    let sample = &corpus[0];
    let a = evaluate(sample, PlanMode::Adaptive, &DefenseConfig::stock());
    let b = evaluate(sample, PlanMode::Adaptive, &DefenseConfig::stock());
    assert_eq!(a.all_alerts, b.all_alerts);
    assert_eq!(a.detected_ever(), b.detected_ever());
}

#[test]
fn machines_with_same_seed_hash_identically() {
    use continuous_attestation::tpm::Manufacturer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(1);
    let mfr = Manufacturer::generate(&mut rng);
    let build = |seed| {
        let mut m = Machine::new(
            &mfr,
            MachineConfig {
                seed,
                ..MachineConfig::default()
            },
        );
        let p = VfsPath::new("/usr/bin/x").unwrap();
        m.write_executable(&p, b"x").unwrap();
        m.exec(&p, ExecMethod::Direct).unwrap();
        m.tpm.pcr_read(HashAlgorithm::Sha256, 10).unwrap().to_hex()
    };
    assert_eq!(build(7), build(7));
}
