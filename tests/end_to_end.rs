//! Cross-crate integration: the full pipeline from distribution mirror to
//! attestation verdict, exercised through the façade crate's public API.

use continuous_attestation::keylime::Agent;
use continuous_attestation::prelude::*;

/// Mirror → dynamic policy → enrolment → update → attestation, all green;
/// then an attack artifact, red.
#[test]
fn mirror_to_verdict_pipeline() -> Result<(), Box<dyn std::error::Error>> {
    // Distribution side.
    let (mut stream, mut repo) = ReleaseStream::new(StreamProfile::small(77));
    let mut mirror = Mirror::new();
    mirror.sync(&repo, 0);

    // Policy side.
    let (mut generator, initial) = DynamicPolicyGenerator::generate_initial(
        &mirror,
        "5.15.0-76",
        0,
        GeneratorConfig::paper_default(),
    );
    assert!(initial.policy_lines_total > 1000);

    // Machine side: install a subset, enrol with the generated policy.
    let mut cluster = Cluster::new(77, VerifierConfig::default());
    let mut machine = Machine::new(
        &cluster.manufacturer,
        MachineConfig {
            hostname: "e2e-node".into(),
            ..MachineConfig::default()
        },
    );
    let installed: Vec<_> = mirror.packages().step_by(4).cloned().collect();
    for pkg in &installed {
        machine.apt.install(&mut machine.vfs, pkg)?;
    }
    machine.apt.take_latest_staged_kernel();
    let id = cluster.add_agent(Agent::new(machine), generator.policy().clone())?;

    // Execute a handful of installed binaries: all in policy. (Kernel
    // packages ship no directly executable files — skip them.)
    for pkg in installed.iter().filter(|p| !p.is_kernel).take(5) {
        let path = VfsPath::new(&pkg.files[0].install_path)?;
        cluster
            .agent_mut(&id)
            .unwrap()
            .machine_mut()
            .exec(&path, ExecMethod::Direct)?;
    }
    assert!(cluster.attest(&id)?.is_verified());

    // A day of releases lands; sync, regenerate, push, update, attest.
    repo.apply_release(&stream.next_day());
    let diff = mirror.sync(&repo, 1);
    generator.apply_diff(&diff, 1);
    cluster
        .verifier
        .update_policy(&id, generator.policy().clone())?;
    {
        let m = cluster.agent_mut(&id).unwrap().machine_mut();
        let packages: Vec<_> = mirror.packages().cloned().collect();
        m.run_updates(packages.iter())?;
    }
    generator.finish_update_window();
    cluster
        .verifier
        .update_policy(&id, generator.policy().clone())?;
    assert!(cluster.attest(&id)?.is_verified());

    // An attacker drops something the policy has never heard of.
    {
        let m = cluster.agent_mut(&id).unwrap().machine_mut();
        let implant = VfsPath::new("/usr/sbin/implant")?;
        m.write_executable(&implant, b"implant")?;
        m.exec(&implant, ExecMethod::Direct)?;
    }
    assert!(!cluster.attest(&id)?.is_verified());
    Ok(())
}

/// The verifier's log replay is anchored in the TPM: rewriting history on
/// the agent side is caught as a PCR mismatch, not silently accepted.
#[test]
fn agent_cannot_rewrite_history() -> Result<(), Box<dyn std::error::Error>> {
    use continuous_attestation::keylime::FailureKind;

    let mut cluster = Cluster::new(3, VerifierConfig::default());
    let id = cluster.add_machine(MachineConfig::default(), RuntimePolicy::new())?;
    assert!(cluster.attest(&id)?.is_verified());

    // The attacker executes malware, then "cleans" the in-memory log by
    // rebooting-without-rebooting is impossible — the closest they can do
    // is run code whose entry they cannot remove: the verifier sees it.
    {
        let m = cluster.agent_mut(&id).unwrap().machine_mut();
        let mal = VfsPath::new("/usr/bin/malware")?;
        m.write_executable(&mal, b"malware")?;
        m.exec(&mal, ExecMethod::Direct)?;
    }
    match cluster.attest(&id)? {
        AttestationOutcome::Failed { alerts } => {
            assert!(matches!(
                alerts[0].kind,
                FailureKind::NotInPolicy { .. } | FailureKind::HashMismatch { .. }
            ));
        }
        other => panic!("unexpected {other:?}"),
    }

    // A genuine reboot resets both the log and PCR 10 together; the
    // verifier follows the boot counter and stays consistent.
    cluster.agent_mut(&id).unwrap().machine_mut().reboot()?;
    cluster.resolve(&id)?;
    assert!(cluster.attest(&id)?.is_verified());
    Ok(())
}

/// SNAP scrubbing end to end: with scrubbing the snap runs in-policy;
/// without it, the truncated path false-positives.
#[test]
fn snap_scrubbing_end_to_end() -> Result<(), Box<dyn std::error::Error>> {
    for scrubbing in [true, false] {
        let (_, repo) = ReleaseStream::new(StreamProfile::small(5));
        let mut mirror = Mirror::new();
        mirror.sync(&repo, 0);
        let (mut generator, _) = DynamicPolicyGenerator::generate_initial(
            &mirror,
            "5.15.0-76",
            0,
            GeneratorConfig {
                snap_scrubbing: scrubbing,
                ..GeneratorConfig::paper_default()
            },
        );
        let snap = Snap::core20(1405);
        generator.include_snap(&snap);

        let mut cluster = Cluster::new(5, VerifierConfig::default());
        let mut machine = Machine::new(&cluster.manufacturer, MachineConfig::default());
        machine.snaps.install(&mut machine.vfs, snap)?;
        let id = cluster.add_agent(Agent::new(machine), generator.policy().clone())?;

        let snap_bin = VfsPath::new("/snap/core20/1405/usr/bin/python3")?;
        cluster
            .agent_mut(&id)
            .unwrap()
            .machine_mut()
            .exec(&snap_bin, ExecMethod::Direct)?;

        let verified = cluster.attest(&id)?.is_verified();
        assert_eq!(
            verified, scrubbing,
            "scrubbing={scrubbing} must decide whether the snap passes"
        );
    }
    Ok(())
}
